(** Session-scoped memoization and accounting for synthesis.

    A session owns every piece of state that used to be global or
    per-engine: the scheduler's prepared-context and module-profile
    caches, the engine's fingerprint-keyed cost cache, and the
    aggregated evaluation counters. Engines, passes and requests all
    borrow from the session they were created with — there is no
    process-wide mutable cache state left in [lib/core] or
    [lib/sched].

    Sharing one session across N concurrent [Synthesize.synthesize]
    calls is safe and bit-identical to running each call on a fresh
    session: every cached value is a deterministic function of its key
    (cost entries are additionally verified structurally against the
    design, so fingerprint collisions fall through to recomputation),
    so a cache hit only changes {e which computation ran}, never the
    value observed. The cost cache is partitioned by the full
    evaluation context (library, vdd, clock, constraints, sampling
    period, trace), so requests with different parameters can share a
    session without aliasing.

    One asymmetry is allowed by design: a shared entry can be {e more
    complete} than a fresh run would have produced at the same point —
    its power simulation may already be filled in by an earlier run.
    Completeness never changes a search decision (area objectives
    ignore power; power-mode bound skipping is exact), and final
    results are always fully evaluated, so results stay bit-identical.

    The session is the unit ROADMAP item 1 ([hsyn serve]) shares
    between concurrent requests and item 2's portfolio strategies race
    over. *)

module Design = Hsyn_rtl.Design
module Sched = Hsyn_sched.Sched
module Shard_tbl = Hsyn_util.Shard_tbl

(** {1 Evaluation counters}

    Owned here (rather than by [Engine]) so the session can aggregate
    across every engine created against it; [Engine] re-exports the
    record for compatibility. *)

type counters = {
  generated : int;
  evaluated : int;
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  power_sims : int;
  power_skipped : int;
  batches : int;
  disk_hits : int;  (** cache hits served by entries loaded from disk *)
  wall_s : float;
}

val zero : counters
val add : counters -> counters -> counters
val sub : counters -> counters -> counters
val pp_counters : Format.formatter -> counters -> unit

(** {1 Sessions} *)

type t

val create :
  ?cost_shards:int ->
  ?max_contexts:int ->
  ?prepared_capacity:int ->
  ?profile_capacity:int ->
  unit ->
  t
(** [cost_shards] (default 8) shards each per-context cost cache;
    [max_contexts] (default 64) bounds the number of distinct
    evaluation contexts with live cost caches (FIFO beyond that);
    the two capacities size the scheduler cache (see
    {!Sched.Cache.create}). *)

val sched_cache : t -> Sched.Cache.t
(** The scheduler-side cache (prepared contexts, module profiles) this
    session owns; pass it to [Sched]/[Area]/[Power] entry points. *)

(** {1 Aggregated accounting} *)

val bump : t -> ?family:string -> counters -> unit
(** Add a delta to the session totals (and the per-family breakdown
    when [family] is given). Thread-safe; called by engines on every
    evaluation. *)

val totals : t -> counters

val family_totals : t -> (string * counters) list
(** Sorted by family name. *)

val reset_totals : t -> unit

(** {1 The cost cache}

    Fingerprint-keyed evaluation entries, one table per evaluation
    context. An entry's state is a single atomic value — either
    [Partial] (schedule + area only) or [Full] (trace simulation
    included) — so concurrent engines upgrading or reading an entry
    can never observe a torn pair of "power done" flag and stale
    eval. *)

type entry_state = Partial of Cost.eval | Full of Cost.eval

type entry = { e_design : Design.t; e_state : entry_state Atomic.t; e_from_disk : bool }
(** [e_from_disk] marks entries repopulated by {!load_into}; hits on
    them are counted as [disk_hits] in addition to [cache_hits]. *)

val entry_eval : entry -> Cost.eval

type cost_cache

val cost_cache :
  t ->
  capacity:int ->
  ctx:Design.ctx ->
  cs:Sched.constraints ->
  sampling_ns:float ->
  trace:int array list ->
  cost_cache
(** The session's cost cache for one evaluation context, created on
    first use. [capacity] only applies to that first creation (the
    table is shared afterwards); the library is compared by physical
    identity, everything else structurally. *)

val cost_find : cost_cache -> int64 -> Design.t -> entry option
(** Lookup verified against the design: a fingerprint collision is
    reported as a miss, never a wrong entry. *)

val cost_insert : cost_cache -> int64 -> entry -> int
(** Insert (or replace, after a collision) an entry; returns the
    number of entries evicted to make room. *)

val cost_size : cost_cache -> int

(** {1 Persistence}

    The disk tier of ROADMAP item 2: {!save} snapshots every live
    evaluation context's cost cache into a cache directory — one
    content-addressed, versioned file per module library (see
    {!Cache_file}) — and {!load_into} repopulates a (typically fresh)
    session from it. Reloaded entries carry their design, so the
    structural-verification guarantee survives the round trip: a
    fingerprint collision against a disk-loaded entry degrades to
    recomputation exactly like an in-memory one, and a warm run is
    bit-identical to a cold run. *)

val save : t -> dir:string -> (int, string) result
(** Write one cache file per library under [dir] (created if missing),
    atomically. Returns the number of entries persisted. *)

val load_into : ?capacity:int -> t -> lib:Hsyn_modlib.Library.t -> dir:string -> (int, string) result
(** Repopulate [t] from the cache file for [lib] under [dir]. [Ok 0]
    when no file exists (a cold start); [Error _] for unreadable,
    version-mismatched or foreign files — callers log a warning and
    continue cold, never fail the run. Live entries are never
    overwritten. [capacity] (default 4096, matching
    [Engine.default_policy]) sizes context caches created here. *)

(** {1 Statistics and export} *)

type stats = {
  cost_tbl : Shard_tbl.stats;  (** aggregated over all context caches *)
  contexts : int;  (** live evaluation contexts *)
  prepared_tbl : Shard_tbl.stats;
  profile_tbl : Shard_tbl.stats;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val export_metrics : t -> unit
(** Publish the current {!stats} through [Obs.Metrics] as [session.*]
    gauges (hits, misses, evictions, sizes, per-shard occupancy as
    [session.<table>.shard<i>.size]). A no-op while metrics are
    disabled. Call after a run (or periodically from a server loop);
    values are absolute snapshots, not deltas. *)
