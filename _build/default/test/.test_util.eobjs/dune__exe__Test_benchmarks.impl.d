test/test_benchmarks.ml: Alcotest Array Buffer Hsyn_benchmarks Hsyn_dfg Hsyn_eval List Printf Tu
