lib/core/moves.ml: Array Cost Float Hsyn_dfg Hsyn_embed Hsyn_modlib Hsyn_rtl Hsyn_sched Hsyn_util Lazy List Printf
