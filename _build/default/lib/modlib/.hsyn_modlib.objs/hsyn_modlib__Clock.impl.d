lib/modlib/clock.ml: Array Float Fu Library List
