test/test_text.ml: Alcotest Array Filename Hsyn_dfg List String Sys
