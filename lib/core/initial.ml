module Design = Hsyn_rtl.Design
module Dfg = Hsyn_dfg.Dfg
module Registry = Hsyn_dfg.Registry
module Sched = Hsyn_sched.Sched
module Library = Hsyn_modlib.Library

let rec build ?sched_cache ctx ~complexes registry (dfg : Dfg.t) =
  let insts = ref [] in
  let n_insts = ref 0 in
  let add_inst kind =
    insts := kind :: !insts;
    incr n_insts;
    !n_insts - 1
  in
  let node_inst =
    Array.map
      (fun (node : Dfg.node) ->
        match node.Dfg.kind with
        | Dfg.Op op -> add_inst (Design.Simple (Library.fastest_for ctx.Design.lib op))
        | Dfg.Call behavior ->
            let rm =
              match complexes behavior with
              | [] ->
                  let variant = Registry.default_variant registry behavior in
                  let part = build ?sched_cache ctx ~complexes registry variant in
                  { Design.rm_name = behavior ^ "#init"; parts = [ (behavior, part) ] }
              | candidates ->
                  (* fastest available implementation *)
                  let busy rm =
                    (Sched.module_profile ?cache:sched_cache ctx rm behavior).Sched.busy
                  in
                  List.fold_left (fun best rm -> if busy rm < busy best then rm else best)
                    (List.hd candidates) (List.tl candidates)
            in
            add_inst (Design.Module rm)
        | Dfg.Input | Dfg.Output | Dfg.Const _ | Dfg.Delay _ -> -1)
      dfg.Dfg.nodes
  in
  let nv = Design.n_values dfg in
  let value_reg = Array.make nv (-1) in
  let n_regs = ref 0 in
  for v = 0 to nv - 1 do
    let ({ Dfg.node; _ } : Dfg.port) = Design.value_of_index dfg v in
    match dfg.Dfg.nodes.(node).Dfg.kind with
    | Dfg.Const _ | Dfg.Output -> ()
    | Dfg.Input | Dfg.Op _ | Dfg.Call _ | Dfg.Delay _ ->
        value_reg.(v) <- !n_regs;
        incr n_regs
  done;
  {
    Design.dfg;
    insts = Array.of_list (List.rev !insts);
    node_inst;
    value_reg;
    n_regs = !n_regs;
  }
