module Design = Hsyn_rtl.Design
module Sched = Hsyn_sched.Sched
module Registry = Hsyn_dfg.Registry
module Dfg = Hsyn_dfg.Dfg
module Op = Hsyn_dfg.Op
module Fu = Hsyn_modlib.Fu
module Library = Hsyn_modlib.Library
module Embed = Hsyn_embed.Embed

type kind = Select | Resynthesize | Merge | Split | Rewrite

(* The single source of truth for the move-family universe: variant,
   display name, one-line description. Everything that enumerates
   families — [kind_name], pass statistics, reports, docs — derives
   from this table, so adding a family cannot silently desynchronize a
   hard-coded list elsewhere. *)
let all_kinds =
  [
    (Select, "A:select", "module selection");
    (Resynthesize, "B:resynth", "resynthesis under environment constraints");
    (Merge, "C:merge", "merging / resource sharing");
    (Split, "D:split", "resource splitting");
    (Rewrite, "E:rewrite", "algebraic datapath rewriting");
  ]

let kind_name k =
  let _, name, _ = List.find (fun (k', _, _) -> k' = k) all_kinds in
  name

let family_names = List.map (fun (_, name, _) -> name) all_kinds

type t = {
  kind : kind;
  description : string;
  candidate : Design.t;
  eval : Cost.eval;
  gain : float;
}

type env = {
  ctx : Design.ctx;
  cs : Sched.constraints;
  sampling_ns : float;
  trace : int array list;
  objective : Cost.objective;
  engine : Engine.t;
  registry : Registry.t;
  complexes : string -> Design.rtl_module list;
  resynth :
    (Design.ctx -> Sched.constraints -> Cost.objective -> Design.t -> Design.t) option;
  max_candidates : int;
  allow_embed : bool;
  allow_split : bool;
  allow_rewrite : bool;
  mutable fresh_names : int;
}

let fresh_name env base =
  env.fresh_names <- env.fresh_names + 1;
  Printf.sprintf "%s~%d" base env.fresh_names

(* Scheduling done by generators (not via the engine) still goes
   through the session's scheduler cache. *)
let sched_cache env = Session.sched_cache (Engine.session env.engine)

(* Candidates are produced lazily — [(kind, description), design]
   sequences — so the per-family truncation in [best_of] also bounds
   generation work (nested resynthesis, RTL embedding), not just
   evaluation. All evaluation goes through the engine: memoized,
   staged, batched over the worker pool. *)
type candidate = (kind * string) * Design.t

let best_of env cur_value (candidates : candidate Seq.t) =
  match
    Engine.best_of env.engine
      ~family:(fun (kind, _) -> kind_name kind)
      ~limit:env.max_candidates candidates
  with
  | None -> None
  | Some ((kind, description), candidate, eval, value) ->
      Some { kind; description; candidate; eval; gain = cur_value -. value }

(* ------------------------------------------------------------------ *)
(* Helpers on designs *)

let single_behavior (rm : Design.rtl_module) =
  match rm.Design.parts with [ (b, _) ] -> Some b | _ -> None

(* Consumers of a value, via the index built once per generator run —
   replaces the former whole-graph rescan per query. *)
let consumers idx (dfg : Dfg.t) (p : Dfg.port) = idx.(Design.value_index dfg p)

(* Rebind all nodes from instance [j] onto [i] with merged unit type,
   then drop [j]. *)
let merge_simple d i j merged_kind =
  let d = Design.with_inst d i merged_kind in
  let d =
    List.fold_left (fun d node -> Design.with_binding d node i) d (Design.nodes_on d j)
  in
  Design.compact d

(* ------------------------------------------------------------------ *)
(* Move family A: module selection *)

let select_candidates env (d : Design.t) : candidate Seq.t =
  let lib = env.ctx.Design.lib in
  (* rank unit swaps by how much objective they can plausibly win, so
     truncation in [best_of] keeps the promising ones: big capacitance
     cuts first for power, big area cuts first for area *)
  let swap_score uses (old_fu : Fu.t) (alt : Fu.t) =
    match env.objective with
    | Cost.Power -> Float.of_int uses *. (old_fu.Fu.energy_cap -. alt.Fu.energy_cap)
    | Cost.Area -> old_fu.Fu.area -. alt.Fu.area
  in
  let simple =
    List.concat
      (List.init (Array.length d.Design.insts) (fun i ->
           if not (Design.inst_used d i) then []
           else
             match d.Design.insts.(i) with
             | Design.Simple fu ->
                 let uses = List.length (Design.nodes_on d i) in
                 List.map
                   (fun alt ->
                     ( swap_score uses fu alt,
                       ( (Select, Printf.sprintf "I%d %s -> %s" i fu.Fu.name alt.Fu.name),
                         Design.with_inst d i (Design.Simple alt) ) ))
                   (Library.alternatives lib fu)
             | Design.Module _ -> []))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  let complex =
    List.concat
      (List.init (Array.length d.Design.insts) (fun i ->
           if not (Design.inst_used d i) then []
           else
             match d.Design.insts.(i) with
             | Design.Module rm -> (
                 match single_behavior rm with
                 | None -> []
                 | Some b ->
                     env.complexes b
                     |> List.filter (fun (rm' : Design.rtl_module) ->
                            rm'.Design.rm_name <> rm.Design.rm_name)
                     |> List.map (fun rm' ->
                            ( ( Select,
                                Printf.sprintf "I%d %s -> %s" i rm.Design.rm_name
                                  rm'.Design.rm_name ),
                              Design.with_inst d i (Design.Module rm') )))
             | Design.Simple _ -> []))
  in
  List.to_seq (simple @ complex)

(* ------------------------------------------------------------------ *)
(* Move family B: resynthesis under environment constraints *)

let resynth_candidates env (d : Design.t) : candidate Seq.t =
  match env.resynth with
  | None -> Seq.empty
  | Some resynth ->
      let dfg = d.Design.dfg in
      (* schedule, ALAP and the consumer index are shared by all
         instances but only computed if some candidate is pulled *)
      let pre =
        lazy
          ( Sched.schedule ~cache:(sched_cache env) env.ctx env.cs d,
            Sched.alap_start ~cache:(sched_cache env) env.ctx ~deadline:env.cs.Sched.deadline d,
            Design.consumer_index dfg )
      in
      Seq.init (Array.length d.Design.insts) Fun.id
      |> Seq.concat_map (fun i ->
             match d.Design.insts.(i) with
             | Design.Simple _ -> Seq.empty
             | Design.Module rm -> (
                 match (single_behavior rm, Design.nodes_on d i) with
                 | Some behavior, [ call ] ->
                     (* the nested synthesis is the expensive part:
                        defer it until this element is demanded *)
                     fun () ->
                       let sch, alap, cidx = Lazy.force pre in
                       let node = dfg.Dfg.nodes.(call) in
                       let arrivals =
                         Array.map
                           (fun p -> sch.Sched.avail.(Design.value_index dfg p))
                           node.Dfg.ins
                       in
                       let latest_out out =
                         let p = { Dfg.node = call; out } in
                         let cons = consumers cidx dfg p in
                         List.fold_left
                           (fun acc (c, _) ->
                             match dfg.Dfg.nodes.(c).Dfg.kind with
                             | Dfg.Output | Dfg.Delay _ -> min acc env.cs.Sched.deadline
                             | _ -> min acc (max 0 alap.(c)))
                           env.cs.Sched.deadline cons
                       in
                       let outs = Array.init node.Dfg.n_out latest_out in
                       let base = Array.fold_left min max_int arrivals in
                       let base = if base = max_int then 0 else base in
                       let rel_arr = Array.map (fun a -> a - base) arrivals in
                       let rel_out = Array.map (fun o -> max 1 (o - base)) outs in
                       let inner_deadline = Array.fold_left max 1 rel_out in
                       let inner_cs =
                         {
                           Sched.input_arrival = rel_arr;
                           output_deadline = Some rel_out;
                           deadline = inner_deadline;
                         }
                       in
                       let part = Design.module_part rm behavior in
                       let part' = resynth env.ctx inner_cs env.objective part in
                       if part' == part then Seq.Nil
                       else
                         let rm' =
                           {
                             Design.rm_name = fresh_name env rm.Design.rm_name;
                             parts = [ (behavior, part') ];
                           }
                         in
                         Seq.Cons
                           ( ( ( Resynthesize,
                                 Printf.sprintf "I%d resynthesize %s under slack" i
                                   rm.Design.rm_name ),
                               Design.with_inst d i (Design.Module rm') ),
                             Seq.empty )
                 | _ -> Seq.empty))

(* ------------------------------------------------------------------ *)
(* Move family C: merging / resource sharing *)

let simple_pairs (d : Design.t) =
  let n = Array.length d.Design.insts in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Design.inst_used d i && Design.inst_used d j then
        match d.Design.insts.(i), d.Design.insts.(j) with
        | Design.Simple fi, Design.Simple fj when not (Fu.is_chain fi || Fu.is_chain fj) ->
            if Fu.compatible fi fj then pairs := (i, j, Design.Simple fi) :: !pairs
            else if Fu.compatible fj fi then pairs := (i, j, Design.Simple fj) :: !pairs
        | _ -> ()
    done
  done;
  (* largest area saving first *)
  let saved (i, j, merged) =
    let area = function Design.Simple fu -> fu.Fu.area | Design.Module _ -> 0. in
    area d.Design.insts.(i) +. area d.Design.insts.(j) -. area merged
  in
  List.sort (fun a b -> compare (saved b) (saved a)) !pairs

let merge_simple_candidates (d : Design.t) : candidate Seq.t =
  List.to_seq (simple_pairs d)
  |> Seq.map (fun (i, j, merged) ->
         ((Merge, Printf.sprintf "share I%d+I%d" i j), merge_simple d i j merged))

(* Chain fusion: nodes a -> b (both additions on separate plain units)
   fused onto a chained adder; extended to three for chained_add3. *)
let chain_candidates env (d : Design.t) : candidate Seq.t =
  let lib = env.ctx.Design.lib in
  let dfg = d.Design.dfg in
  let cidx = lazy (Design.consumer_index dfg) in
  let is_plain_add id =
    dfg.Dfg.nodes.(id).Dfg.kind = Dfg.Op Op.Add
    && d.Design.node_inst.(id) >= 0
    &&
    match d.Design.insts.(d.Design.node_inst.(id)) with
    | Design.Simple fu -> not (Fu.is_chain fu)
    | Design.Module _ -> false
  in
  let fuse nodes chain_fu =
    (* allocate the chain instance, rebind members, unregister
       chain-internal values consumed nowhere else *)
    let d', inst = Design.add_inst d (Design.Simple chain_fu) in
    let d' = List.fold_left (fun acc id -> Design.with_binding acc id inst) d' nodes in
    let d' =
      List.fold_left
        (fun acc id ->
          let p = { Dfg.node = id; out = 0 } in
          let cons = consumers (Lazy.force cidx) dfg p in
          let internal_only =
            cons <> [] && List.for_all (fun (c, _) -> List.mem c nodes) cons
          in
          if internal_only then Design.with_value_reg acc (Design.value_index dfg p) (-1)
          else acc)
        d' nodes
    in
    Design.compact d'
  in
  let pairs = ref [] in
  Array.iteri
    (fun b (node : Dfg.node) ->
      if is_plain_add b then
        Array.iter
          (fun ({ Dfg.node = a; _ } : Dfg.port) ->
            if is_plain_add a && d.Design.node_inst.(a) <> d.Design.node_inst.(b) then
              pairs := (a, b) :: !pairs)
          node.Dfg.ins)
    dfg.Dfg.nodes;
  let two =
    match Library.chains_for lib Op.Add 2 with
    | [] -> Seq.empty
    | chain :: _ ->
        List.to_seq !pairs
        |> Seq.map (fun (a, b) ->
               ( ( Merge,
                   Printf.sprintf "chain %s+%s on %s" dfg.Dfg.nodes.(a).Dfg.label
                     dfg.Dfg.nodes.(b).Dfg.label chain.Fu.name ),
                 fuse [ a; b ] chain ))
  in
  let three =
    match Library.chains_for lib Op.Add 3 with
    | [] -> Seq.empty
    | chain :: _ ->
        List.to_seq !pairs
        |> Seq.concat_map (fun (a, b) ->
               List.to_seq !pairs
               |> Seq.filter_map (fun (b', c) ->
                      if b' = b && c <> a && is_plain_add c then
                        Some
                          ( ( Merge,
                              Printf.sprintf "chain3 %s+%s+%s" dfg.Dfg.nodes.(a).Dfg.label
                                dfg.Dfg.nodes.(b).Dfg.label dfg.Dfg.nodes.(c).Dfg.label ),
                            fuse [ a; b; c ] chain )
                      else None))
  in
  Seq.append two three

(* Behaviors actually invoked on an instance. *)
let behaviors_used (d : Design.t) i =
  Design.nodes_on d i
  |> List.filter_map (fun id ->
         match d.Design.dfg.Dfg.nodes.(id).Dfg.kind with Dfg.Call b -> Some b | _ -> None)
  |> List.sort_uniq compare

(* Time-multiplex the calls of instance [j] onto instance [i] when
   [i]'s module already implements every behavior [j] executes — the
   sharing counterpart of simple-unit merging, and the main source of
   area recovery on hierarchical inputs (seven butterflies on one
   butterfly module). No embedding needed. *)
let module_share_candidates (d : Design.t) : candidate Seq.t =
  let n = Array.length d.Design.insts in
  let cands = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Design.inst_used d i && Design.inst_used d j then
        match d.Design.insts.(i), d.Design.insts.(j) with
        | Design.Module rmi, Design.Module rmj ->
            let needed = behaviors_used d j in
            if
              needed <> []
              && List.for_all (fun b -> List.mem_assoc b rmi.Design.parts) needed
              && (i < j || rmi.Design.rm_name <> rmj.Design.rm_name)
            then begin
              let d' =
                List.fold_left
                  (fun acc node -> Design.with_binding acc node i)
                  d (Design.nodes_on d j)
              in
              cands :=
                ( ( Merge,
                    Printf.sprintf "multiplex I%d(%s) onto I%d(%s)" j rmj.Design.rm_name i
                      rmi.Design.rm_name ),
                  Design.compact d' )
                :: !cands
            end
        | _ -> ()
    done
  done;
  List.to_seq !cands

(* Complex-module merging via RTL embedding. The embedding itself is
   deferred per pair, so candidates beyond the truncation limit cost
   nothing. *)
let module_merge_candidates env (d : Design.t) : candidate Seq.t =
  let n = Array.length d.Design.insts in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Design.inst_used d i && Design.inst_used d j then
        match d.Design.insts.(i), d.Design.insts.(j) with
        | Design.Module rmi, Design.Module rmj -> pairs := (i, j, rmi, rmj) :: !pairs
        | _ -> ()
    done
  done;
  List.to_seq !pairs
  |> Seq.filter_map (fun (i, j, rmi, rmj) ->
         match
           Embed.merge_modules env.ctx
             ~name:(fresh_name env (rmi.Design.rm_name ^ "+" ^ rmj.Design.rm_name))
             rmi rmj
         with
         | None -> None
         | Some (merged, _) ->
             let d' = Design.with_inst d i (Design.Module merged) in
             let d' =
               List.fold_left
                 (fun acc node -> Design.with_binding acc node i)
                 d' (Design.nodes_on d' j)
             in
             Some
               ( ( Merge,
                   Printf.sprintf "embed I%d(%s)+I%d(%s)" i rmi.Design.rm_name j
                     rmj.Design.rm_name ),
                 Design.compact d' ))

(* Left-edge register re-allocation: one global candidate. *)
let left_edge_candidate env (d : Design.t) : candidate Seq.t =
 fun () ->
  let dfg = d.Design.dfg in
  let sch = Sched.schedule ~cache:(sched_cache env) env.ctx env.cs d in
  if not sch.Sched.feasible then Seq.Nil
  else begin
    let cidx = Design.consumer_index dfg in
    let nv = Design.n_values dfg in
    (* values that must keep private registers: delay state *)
    let is_delay_value v =
      let ({ Dfg.node; _ } : Dfg.port) = Design.value_of_index dfg v in
      match dfg.Dfg.nodes.(node).Dfg.kind with Dfg.Delay _ -> true | _ -> false
    in
    let lifetime v =
      let p = Design.value_of_index dfg v in
      let birth = sch.Sched.avail.(v) in
      let death =
        List.fold_left
          (fun acc (c, _) ->
            let t =
              match dfg.Dfg.nodes.(c).Dfg.kind with
              | Dfg.Output | Dfg.Delay _ ->
                  sch.Sched.avail.(v) (* consumed on availability *)
              | _ -> max sch.Sched.start.(c) sch.Sched.avail.(v)
            in
            max acc t)
          birth
          (consumers cidx dfg p)
      in
      (birth, death)
    in
    let shareable = ref [] and fixed = ref [] in
    for v = 0 to nv - 1 do
      if d.Design.value_reg.(v) >= 0 then
        if is_delay_value v then fixed := v :: !fixed else shareable := v :: !shareable
    done;
    let sorted =
      List.map (fun v -> (lifetime v, v)) !shareable
      |> List.sort (fun ((b1, _), v1) ((b2, _), v2) ->
             match compare b1 b2 with 0 -> compare v1 v2 | c -> c)
    in
    let value_reg = Array.make nv (-1) in
    let next_reg = ref 0 in
    List.iter
      (fun v ->
        value_reg.(v) <- !next_reg;
        incr next_reg)
      (List.rev !fixed);
    let reg_free = Hsyn_util.Vec.create () in
    (* reg_free.(k) = death time of last value in shareable register k *)
    let assign ((birth, death), v) =
      let n = Hsyn_util.Vec.length reg_free in
      let rec find k =
        if k >= n then begin
          ignore (Hsyn_util.Vec.push reg_free death);
          value_reg.(v) <- !next_reg + k
        end
        else if Hsyn_util.Vec.get reg_free k <= birth then begin
          Hsyn_util.Vec.set reg_free k death;
          value_reg.(v) <- !next_reg + k
        end
        else find (k + 1)
      in
      find 0
    in
    List.iter assign sorted;
    let n_regs = !next_reg + Hsyn_util.Vec.length reg_free in
    let d' = { d with Design.value_reg; n_regs } in
    Seq.Cons (((Merge, "left-edge register re-allocation"), d'), Seq.empty)
  end

let merge_candidates env d : candidate Seq.t =
  (* the left-edge register move first: single cheap candidate that
     must never fall to truncation *)
  Seq.append (left_edge_candidate env d)
    (Seq.append (merge_simple_candidates d)
       (Seq.append (chain_candidates env d)
          (Seq.append (module_share_candidates d)
             (if env.allow_embed then module_merge_candidates env d else Seq.empty))))

(* ------------------------------------------------------------------ *)
(* Move family D: splitting *)

let split_candidates env (d : Design.t) : candidate Seq.t =
  let sch = lazy (Sched.schedule ~cache:(sched_cache env) env.ctx env.cs d) in
  Seq.init (Array.length d.Design.insts) Fun.id
  |> Seq.concat_map (fun i ->
         let nodes = Design.nodes_on d i in
         if List.length nodes < 2 then Seq.empty
         else
           match d.Design.insts.(i) with
           | Design.Simple fu when not (Fu.is_chain fu) ->
               fun () ->
                 let sch = Lazy.force sch in
                 let ordered =
                   List.sort (fun a b -> compare sch.Sched.start.(a) sch.Sched.start.(b)) nodes
                 in
                 let odd = List.filteri (fun k _ -> k mod 2 = 1) ordered in
                 let d', inst = Design.add_inst d (Design.Simple fu) in
                 let d' =
                   List.fold_left (fun acc n -> Design.with_binding acc n inst) d' odd
                 in
                 Seq.Cons
                   (((Split, Printf.sprintf "split I%d (%s)" i fu.Fu.name), d'), Seq.empty)
           | Design.Simple _ -> Seq.empty
           | Design.Module rm ->
               fun () ->
                 let sch = Lazy.force sch in
                 let ordered =
                   List.sort (fun a b -> compare sch.Sched.start.(a) sch.Sched.start.(b)) nodes
                 in
                 let odd = List.filteri (fun k _ -> k mod 2 = 1) ordered in
                 let d', inst = Design.add_inst d (Design.Module rm) in
                 let d' =
                   List.fold_left (fun acc n -> Design.with_binding acc n inst) d' odd
                 in
                 Seq.Cons
                   (((Split, Printf.sprintf "split I%d (%s)" i rm.Design.rm_name), d'), Seq.empty))

(* ------------------------------------------------------------------ *)
(* Move family E: algebraic datapath rewriting *)

module Rewrite_dfg = Hsyn_dfg.Rewrite
module Sim = Hsyn_eval.Sim
module Metrics = Hsyn_obs.Metrics

(* Rebind a rewritten graph onto the current design's resources.
   Nodes surviving the rewrite — matched by label with an unchanged
   kind — keep their instance binding and register; new nodes get the
   fastest supporting unit and fresh registers. Returns [None] when
   the result does not validate (e.g. a rewrite broke a chained-unit
   binding, or the library has no unit for an introduced operation). *)
let rebind_rewritten env (d : Design.t) (g' : Dfg.t) =
  let dfg = d.Design.dfg in
  let by_label = Hashtbl.create (Array.length dfg.Dfg.nodes) in
  Array.iteri (fun i (n : Dfg.node) -> Hashtbl.replace by_label n.Dfg.label i) dfg.Dfg.nodes;
  let extra = ref [] and n_extra = ref 0 in
  let base = Array.length d.Design.insts in
  let add_inst k =
    extra := k :: !extra;
    incr n_extra;
    base + !n_extra - 1
  in
  match
    Array.map
      (fun (node : Dfg.node) ->
        match node.Dfg.kind with
        | Dfg.Op op -> (
            match Hashtbl.find_opt by_label node.Dfg.label with
            | Some orig
              when dfg.Dfg.nodes.(orig).Dfg.kind = node.Dfg.kind
                   && d.Design.node_inst.(orig) >= 0 ->
                d.Design.node_inst.(orig)
            | _ -> add_inst (Design.Simple (Library.fastest_for env.ctx.Design.lib op)))
        | Dfg.Call _ -> (
            match Hashtbl.find_opt by_label node.Dfg.label with
            | Some orig when dfg.Dfg.nodes.(orig).Dfg.kind = node.Dfg.kind ->
                d.Design.node_inst.(orig)
            | _ -> raise Exit)
        | Dfg.Input | Dfg.Output | Dfg.Const _ | Dfg.Delay _ -> -1)
      g'.Dfg.nodes
  with
  | exception Exit -> None
  | exception Not_found -> None
  | node_inst ->
      let nv' = Design.n_values g' in
      let value_reg = Array.make nv' (-1) in
      let next = ref d.Design.n_regs in
      for v = 0 to nv' - 1 do
        let (p : Dfg.port) = Design.value_of_index g' v in
        let node = g'.Dfg.nodes.(p.Dfg.node) in
        match node.Dfg.kind with
        | Dfg.Const _ | Dfg.Output -> ()
        | Dfg.Input | Dfg.Op _ | Dfg.Call _ | Dfg.Delay _ -> (
            let preserved =
              match Hashtbl.find_opt by_label node.Dfg.label with
              | Some orig when dfg.Dfg.nodes.(orig).Dfg.n_out > p.Dfg.out ->
                  let ov = Design.value_index dfg { Dfg.node = orig; out = p.Dfg.out } in
                  if d.Design.value_reg.(ov) >= 0 then Some d.Design.value_reg.(ov) else None
              | _ -> None
            in
            match preserved with
            | Some r -> value_reg.(v) <- r
            | None ->
                value_reg.(v) <- !next;
                incr next)
      done;
      let insts = Array.append d.Design.insts (Array.of_list (List.rev !extra)) in
      let d' = { Design.dfg = g'; insts; node_inst; value_reg; n_regs = !next } in
      let d' = Design.compact d' in
      (match Design.validate env.ctx d' with Ok () -> Some d' | Error _ -> None)

(* Every candidate passes a mandatory bitwise-equivalence gate: the
   rewritten design is simulated on the environment trace and must
   reproduce the original design's output stream exactly. A candidate
   failing the gate is dropped here — it can be rejected but never
   committed. *)
let rewrite_candidates env (d : Design.t) : candidate Seq.t =
  let bump name = if Metrics.is_enabled () then Metrics.incr (Metrics.counter name) in
  let reference = lazy (Sim.outputs d (Sim.run d env.trace)) in
  List.to_seq (Rewrite_dfg.candidates d.Design.dfg)
  |> Seq.filter_map (fun (description, g') ->
         bump "moves.rewrite.candidates";
         match rebind_rewritten env d g' with
         | None ->
             bump "moves.rewrite.rejected_bind";
             None
         | Some d' -> (
             match Sim.outputs d' (Sim.run d' env.trace) with
             | outs when outs = Lazy.force reference -> Some ((Rewrite, description), d')
             | _ ->
                 bump "moves.rewrite.rejected_sim";
                 None
             | exception Invalid_argument _ ->
                 bump "moves.rewrite.rejected_sim";
                 None))

(* ------------------------------------------------------------------ *)

let span = Hsyn_obs.Trace.(span Move)

let best_select_or_resynth env cur_value d =
  span "best_select_or_resynth" (fun () ->
      best_of env cur_value (Seq.append (select_candidates env d) (resynth_candidates env d)))

let best_merge env cur_value d =
  span "best_merge" (fun () -> best_of env cur_value (merge_candidates env d))

let best_split env cur_value d =
  if env.allow_split then span "best_split" (fun () -> best_of env cur_value (split_candidates env d))
  else None

let best_rewrite env cur_value d =
  if env.allow_rewrite then
    span "best_rewrite" (fun () -> best_of env cur_value (rewrite_candidates env d))
  else None
