module Design = Hsyn_rtl.Design
module Dfg = Hsyn_dfg.Dfg
module Registry = Hsyn_dfg.Registry
module Library = Hsyn_modlib.Library
module Voltage = Hsyn_modlib.Voltage
module Clock = Hsyn_modlib.Clock
module Sched = Hsyn_sched.Sched
module Flatten = Hsyn_dfg.Flatten
module Trace = Hsyn_eval.Trace
module Rng = Hsyn_util.Rng
module Json = Hsyn_util.Json

type config = {
  max_moves : int;
  max_passes : int;
  max_candidates : int;
  trace_length : int;
  trace_kind : Trace.kind;
  seed : int;
  vdd_candidates : float list;
  clk_candidates : float list option;
  max_clocks : int;
  enable_resynth : bool;
  enable_embed : bool;
  enable_split : bool;
  enable_rewrite : bool;
  clib_effort : Clib.effort;
  engine : Engine.policy;
  strategy : int;
}

let default_config =
  {
    max_moves = 10;
    max_passes = 4;
    max_candidates = 60;
    trace_length = 16;
    trace_kind = Trace.default_kind;
    seed = 42;
    vdd_candidates = Voltage.candidates;
    clk_candidates = None;
    max_clocks = 3;
    enable_resynth = true;
    enable_embed = true;
    enable_split = true;
    enable_rewrite = true;
    clib_effort = Clib.default_effort;
    engine = Engine.default_policy;
    strategy = 0;
  }

module Config = struct
  type t = config

  let default = default_config

  let validate (c : t) =
    let err fmt = Printf.ksprintf (fun m -> Error ("config: " ^ m)) fmt in
    if c.max_moves <= 0 then err "max_moves must be positive (got %d)" c.max_moves
    else if c.max_passes <= 0 then err "max_passes must be positive (got %d)" c.max_passes
    else if c.max_candidates <= 0 then
      err "max_candidates must be positive (got %d)" c.max_candidates
    else if c.trace_length <= 0 then err "trace_length must be positive (got %d)" c.trace_length
    else if c.max_clocks <= 0 then err "max_clocks must be positive (got %d)" c.max_clocks
    else if c.vdd_candidates = [] then err "vdd_candidates must not be empty"
    else if List.exists (fun v -> v <= 0.) c.vdd_candidates then
      err "vdd_candidates must all be positive"
    else if c.clk_candidates = Some [] then
      err "clk_candidates, when given, must not be empty"
    else if
      match c.clk_candidates with
      | Some l -> List.exists (fun v -> v <= 0.) l
      | None -> false
    then err "clk_candidates must all be positive"
    else if c.clib_effort.Clib.max_moves <= 0 then err "clib_effort.max_moves must be positive"
    else if c.clib_effort.Clib.max_passes <= 0 then err "clib_effort.max_passes must be positive"
    else if c.clib_effort.Clib.max_candidates <= 0 then
      err "clib_effort.max_candidates must be positive"
    else if c.engine.Engine.jobs < 1 then err "engine.jobs must be at least 1"
    else if c.engine.Engine.cache_capacity < 0 then err "engine.cache_capacity must be >= 0"
    else if c.strategy < 0 then err "strategy must be >= 0 (got %d)" c.strategy
    else Ok c

  let make ?(max_moves = default.max_moves) ?(max_passes = default.max_passes)
      ?(max_candidates = default.max_candidates) ?(trace_length = default.trace_length)
      ?(trace_kind = default.trace_kind) ?(seed = default.seed)
      ?(vdd_candidates = default.vdd_candidates) ?(clk_candidates = default.clk_candidates)
      ?(max_clocks = default.max_clocks) ?(enable_resynth = default.enable_resynth)
      ?(enable_embed = default.enable_embed) ?(enable_split = default.enable_split)
      ?(enable_rewrite = default.enable_rewrite) ?(clib_effort = default.clib_effort) ?(engine = default.engine)
      ?(strategy = default.strategy) () =
    validate
      {
        max_moves;
        max_passes;
        max_candidates;
        trace_length;
        trace_kind;
        seed;
        vdd_candidates;
        clk_candidates;
        max_clocks;
        enable_resynth;
        enable_embed;
        enable_split;
        enable_rewrite;
        clib_effort;
        engine;
        strategy;
      }

  let with_max_moves v t = { t with max_moves = v }
  let with_max_passes v t = { t with max_passes = v }
  let with_max_candidates v t = { t with max_candidates = v }
  let with_trace_length v t = { t with trace_length = v }
  let with_trace_kind v t = { t with trace_kind = v }
  let with_seed v t = { t with seed = v }
  let with_vdd_candidates v t = { t with vdd_candidates = v }
  let with_clk_candidates v t = { t with clk_candidates = v }
  let with_max_clocks v t = { t with max_clocks = v }
  let with_resynth v t = { t with enable_resynth = v }
  let with_embed v t = { t with enable_embed = v }
  let with_split v t = { t with enable_split = v }
  let with_rewrite v t = { t with enable_rewrite = v }
  let with_clib_effort v t = { t with clib_effort = v }
  let with_engine v t = { t with engine = v }
  let with_strategy v t = { t with strategy = v }
end

let min_sampling_ns lib registry dfg =
  let flat = if Dfg.n_calls dfg = 0 then dfg else Flatten.flatten registry dfg in
  Sched.critical_path_ns lib flat

module Request = struct
  type t = {
    lib : Library.t;
    registry : Registry.t;
    dfg : Dfg.t;
    objective : Cost.objective;
    sampling_ns : float;
    config : Config.t;
    budget : Budget.t;
    flatten : bool;
    session : Session.t option;
        (* memoization session shared with other requests; [None] gives
           the run a fresh private session *)
  }

  let make ?(config = default_config) ?(budget = Budget.unlimited) ?(flatten = false) ?session
      ~lib ~registry ~dfg ~objective ~sampling_ns () =
    match Config.validate config with
    | Error msg -> Error msg
    | Ok config ->
        if sampling_ns <= 0. then Error "request: sampling_ns must be positive"
        else Ok { lib; registry; dfg; objective; sampling_ns; config; budget; flatten; session }

  let effective_dfg t =
    if t.flatten && Dfg.n_calls t.dfg > 0 then Flatten.flatten t.registry t.dfg else t.dfg

  (* A deterministic permutation of the sweep order, indexed by
     [config.strategy]: strategy 0 is the canonical order; strategy [s]
     rotates the walk by [s mod n] contexts and reverses direction on
     odd [s]. Every strategy visits the same context set, so every
     {e completed} sweep finds the same optimal objective value — only
     the walk order (and thus tie-breaking and anytime behavior)
     differs. This is what {!portfolio} races. *)
  let permute_strategy strategy l =
    let n = List.length l in
    if strategy <= 0 || n <= 1 then l
    else
      let arr = Array.of_list l in
      let k = strategy mod n in
      let pick i = arr.((i + k) mod n) in
      List.init n (if strategy mod 2 = 1 then fun i -> pick (n - 1 - i) else pick)

  (* The deterministic (V_dd, clock period, deadline) walk order of the
     sweep: the checkpoint cursor indexes into exactly this list (so a
     checkpoint written under one [strategy] only resumes under the
     same [strategy], like [seed]). *)
  let plan t =
    let config = t.config in
    let dfg = effective_dfg t in
    let min_ns = min_sampling_ns t.lib t.registry dfg in
    let vdds =
      match t.objective with Cost.Area -> [ Voltage.nominal ] | Cost.Power -> config.vdd_candidates
    in
    List.concat_map
      (fun vdd ->
        (* prune: even the fastest design misses the sampling period *)
        if min_ns *. Voltage.delay_factor vdd <= t.sampling_ns then
          let clks =
            match config.clk_candidates with
            | Some l -> l
            | None -> Clock.candidates t.lib vdd
          in
          List.filter_map
            (fun clk_ns ->
              let deadline = int_of_float (Float.floor (t.sampling_ns /. clk_ns +. 1e-9)) in
              if deadline >= 1 then Some (vdd, clk_ns, deadline) else None)
            (Clock.spread config.max_clocks clks)
        else [])
      vdds
    |> permute_strategy config.strategy
end

type coverage = {
  contexts_planned : int;
  contexts_started : int;
  contexts_done : int;
  passes_run : int;
  moves_tried : int;
  stop_reason : string option;
}

type result = {
  design : Design.t;
  ctx : Design.ctx;
  eval : Cost.eval;
  objective : Cost.objective;
  sampling_ns : float;
  deadline_cycles : int;
  elapsed_s : float;
  contexts_tried : int;
  stats : Pass.stats;
  clib : Clib.t;
  completed : bool;
  coverage : coverage;
}

module Result = struct
  type t = result

  let schema_version = 1

  let counters_json (c : Engine.counters) =
    Json.Obj
      [
        ("generated", Json.Int c.Engine.generated);
        ("evaluated", Json.Int c.Engine.evaluated);
        ("cache_hits", Json.Int c.Engine.cache_hits);
        ("cache_misses", Json.Int c.Engine.cache_misses);
        ("evictions", Json.Int c.Engine.evictions);
        ("power_sims", Json.Int c.Engine.power_sims);
        ("power_skipped", Json.Int c.Engine.power_skipped);
        ("batches", Json.Int c.Engine.batches);
        ("disk_hits", Json.Int c.Engine.disk_hits);
        ("wall_s", Json.Float c.Engine.wall_s);
      ]

  let to_json_value (r : t) =
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ("kind", Json.String "hsyn.result");
        ("objective", Json.String (Cost.objective_name r.objective));
        ("sampling_ns", Json.Float r.sampling_ns);
        ("completed", Json.Bool r.completed);
        ( "context",
          Json.Obj
            [
              ("vdd", Json.Float r.ctx.Design.vdd);
              ("clk_ns", Json.Float r.ctx.Design.clk_ns);
              ("deadline_cycles", Json.Int r.deadline_cycles);
            ] );
        ( "design",
          Json.Obj
            [
              ("dfg", Json.String r.design.Design.dfg.Dfg.name);
              ("instances", Json.Int (Array.length r.design.Design.insts));
              ("registers", Json.Int r.design.Design.n_regs);
              ("fingerprint", Json.String (Printf.sprintf "%016Lx" (Design.fingerprint r.design)));
            ] );
        ( "eval",
          Json.Obj
            [
              ("area", Json.Float r.eval.Cost.area);
              ("power", Json.Float r.eval.Cost.power);
              ("energy_sample", Json.Float r.eval.Cost.energy_sample);
              ("makespan", Json.Int r.eval.Cost.makespan);
              ("feasible", Json.Bool r.eval.Cost.feasible);
            ] );
        ( "coverage",
          Json.Obj
            [
              ("contexts_planned", Json.Int r.coverage.contexts_planned);
              ("contexts_started", Json.Int r.coverage.contexts_started);
              ("contexts_done", Json.Int r.coverage.contexts_done);
              ("passes_run", Json.Int r.coverage.passes_run);
              ("moves_tried", Json.Int r.coverage.moves_tried);
              ( "stop_reason",
                match r.coverage.stop_reason with None -> Json.Null | Some s -> Json.String s );
            ] );
        ( "stats",
          Json.Obj
            [
              ("passes", Json.Int r.stats.Pass.passes);
              ("moves_committed", Json.Int r.stats.Pass.moves_committed);
              ("moves_tried", Json.Int r.stats.Pass.moves_tried);
              ("interrupted", Json.Bool r.stats.Pass.interrupted);
              ("engine", counters_json r.stats.Pass.engine);
              ( "sched",
                Json.Obj
                  [
                    ("schedules", Json.Int r.stats.Pass.sched.Sched.schedules);
                    ("legacy_schedules", Json.Int r.stats.Pass.sched.Sched.legacy_schedules);
                    ("events_popped", Json.Int r.stats.Pass.sched.Sched.events_popped);
                    ("prepared_hits", Json.Int r.stats.Pass.sched.Sched.prepared_hits);
                    ("prepared_builds", Json.Int r.stats.Pass.sched.Sched.prepared_builds);
                  ] );
            ] );
        ("elapsed_s", Json.Float r.elapsed_s);
      ]

  let to_json r = Json.to_string (to_json_value r)
end

(* A bounded re-synthesis closure for move B: improve the module part
   under the derived environment constraints, without nesting another
   level of B moves. *)
let make_resynth ?session ?token config registry complexes seed =
  let counter = ref 0 in
  fun ctx cs objective (part : Design.t) ->
    incr counter;
    let rng = Rng.create (seed + !counter) in
    let trace =
      Trace.generate rng config.trace_kind
        ~n_inputs:(Array.length part.Design.dfg.Dfg.inputs)
        ~length:config.trace_length
    in
    let sampling_ns = Float.of_int cs.Sched.deadline *. ctx.Design.clk_ns in
    let engine =
      Engine.create ~policy:config.engine ?session ?token ~ctx ~cs ~sampling_ns ~trace
        ~objective ()
    in
    let env =
      {
        Moves.ctx;
        cs;
        sampling_ns;
        trace;
        objective;
        engine;
        registry;
        complexes;
        resynth = None;
        max_candidates = config.clib_effort.Clib.max_candidates;
        allow_embed = config.enable_embed;
        allow_split = config.enable_split;
        allow_rewrite = config.enable_rewrite;
        fresh_names = 0;
      }
    in
    let improved, _ =
      Pass.improve ?token env ~max_moves:config.clib_effort.Clib.max_moves
        ~max_passes:config.clib_effort.Clib.max_passes part
    in
    improved

(* One (V_dd, clock) context of the sweep: build the complex library,
   the initial solution, and run budgeted variable-depth improvement.
   Raises [Budget.Interrupted] only from the preparatory phases (clib
   construction, candidate batches before the first move commits);
   once improvement is underway an interruption surfaces as
   [stats.interrupted] with the best committed prefix. *)
let run_context ~session ?token ~events ~index (req : Request.t) config dfg
    (vdd, clk_ns, deadline) =
  Hsyn_obs.Trace.(span Pass) "context" @@ fun () ->
  let ctx = { Design.lib = req.Request.lib; vdd; clk_ns } in
  let rng = Rng.create config.seed in
  let trace =
    Trace.generate rng config.trace_kind
      ~n_inputs:(Array.length dfg.Dfg.inputs)
      ~length:config.trace_length
  in
  let clib =
    Clib.build ~session ?token ctx req.Request.registry ~rng:(Rng.split rng)
      ~trace_length:config.trace_length ~effort:config.clib_effort ~top:dfg
  in
  let complexes = Clib.lookup clib in
  let cs = Sched.relaxed ~deadline dfg in
  let resynth =
    if config.enable_resynth then
      Some (make_resynth ~session ?token config req.Request.registry complexes config.seed)
    else None
  in
  let engine =
    Engine.create ~policy:config.engine ~session ?token ~ctx ~cs
      ~sampling_ns:req.Request.sampling_ns ~trace ~objective:req.Request.objective ()
  in
  let env =
    {
      Moves.ctx;
      cs;
      sampling_ns = req.Request.sampling_ns;
      trace;
      objective = req.Request.objective;
      engine;
      registry = req.Request.registry;
      complexes;
      resynth;
      max_candidates = config.max_candidates;
      allow_embed = config.enable_embed;
      allow_split = config.enable_split;
      allow_rewrite = config.enable_rewrite;
      fresh_names = 0;
    }
  in
  let initial =
    Initial.build ~sched_cache:(Session.sched_cache session) ctx ~complexes req.Request.registry
      dfg
  in
  (* larger designs need longer move sequences per pass *)
  let max_moves = max config.max_moves (min 40 (Array.length initial.Design.insts)) in
  let on_pass pass moves value =
    events (Events.Pass_done { context = index; pass; moves_committed = moves; value })
  in
  let on_commit (m : Pass.committed_move) =
    events
      (Events.Move_committed
         {
           context = index;
           pass = m.Pass.cm_pass;
           family = m.Pass.cm_family;
           description = m.Pass.cm_description;
           gain = m.Pass.cm_gain;
           value = m.Pass.cm_value;
         })
  in
  let improved, stats =
    Pass.improve ?token ~in_quota:true ~on_pass ~on_commit env ~max_moves
      ~max_passes:config.max_passes initial
  in
  let eval = Engine.evaluate_with_power engine improved in
  (improved, ctx, eval, stats, clib)

exception Stop of Budget.reason

(* Persistent-cache plumbing (ROADMAP item 2). Both directions degrade,
   never fail: an unreadable cache file loads nothing and a failed save
   writes nothing, each surfaced as a [warning] on the event. *)
let load_cache ~session ~config ~lib ~emit dir =
  let capacity = config.engine.Engine.cache_capacity in
  if capacity <= 0 then
    emit
      (Events.Cache_loaded
         { dir; entries = 0; warning = Some "cost cache disabled (engine.cache_capacity = 0)" })
  else
    match Session.load_into ~capacity session ~lib ~dir with
    | Ok n -> emit (Events.Cache_loaded { dir; entries = n; warning = None })
    | Error msg -> emit (Events.Cache_loaded { dir; entries = 0; warning = Some msg })

let save_cache ~session ~emit dir =
  match Session.save session ~dir with
  | Ok n -> emit (Events.Cache_saved { dir; entries = n; warning = None })
  | Error msg -> emit (Events.Cache_saved { dir; entries = 0; warning = Some msg })

let synthesize ?(events = Events.null) ?token ?checkpoint ?(resume = false) ?cache_dir
    (req : Request.t) =
  match Config.validate req.Request.config with
  | Error msg -> Error msg
  | Ok config -> (
      let start_time = Unix.gettimeofday () in
      let token = match token with Some t -> t | None -> Budget.start req.Request.budget in
      (* every engine of this run (contexts, clib construction, nested
         resynthesis) borrows from one session — shared across runs
         when the request carries one *)
      let session =
        match req.Request.session with Some s -> s | None -> Session.create ()
      in
      let emit payload =
        events { Events.at_s = Unix.gettimeofday () -. start_time; payload }
      in
      (match cache_dir with
      | Some dir -> load_cache ~session ~config ~lib:req.Request.lib ~emit dir
      | None -> ());
      let dfg = Request.effective_dfg req in
      let plan = Request.plan req in
      let total = List.length plan in
      let fresh_snapshot =
        {
          Checkpoint.dfg_name = req.Request.dfg.Dfg.name;
          objective = req.Request.objective;
          sampling_ns = req.Request.sampling_ns;
          flattened = req.Request.flatten;
          contexts_planned = total;
          cursor = 0;
          passes_run = 0;
          moves_tried = 0;
          incumbent = None;
        }
      in
      let snapshot0 =
        if not resume then Ok fresh_snapshot
        else
          match checkpoint with
          | None -> Error "resume requested but no checkpoint path given"
          | Some path when not (Sys.file_exists path) ->
              (* a missing checkpoint is a cold start, not an error —
                 this is what lets [--resume] be passed unconditionally *)
              Ok fresh_snapshot
          | Some path -> (
              match Checkpoint.load path with
              | Error msg -> Error msg
              | Ok ck -> (
                  match
                    Checkpoint.compatible ck ~dfg_name:req.Request.dfg.Dfg.name
                      ~objective:req.Request.objective ~sampling_ns:req.Request.sampling_ns
                      ~flattened:req.Request.flatten
                  with
                  | Error msg -> Error msg
                  | Ok () ->
                      if ck.Checkpoint.contexts_planned <> total then
                        Error
                          (Printf.sprintf
                             "checkpoint plans %d contexts but this request plans %d (different \
                              config?)"
                             ck.Checkpoint.contexts_planned total)
                      else Ok ck))
      in
      match snapshot0 with
      | Error msg -> Error msg
      | Ok snap0 ->
          emit
            (Events.Run_started
               {
                 dfg = dfg.Dfg.name;
                 objective = Cost.objective_name req.Request.objective;
                 sampling_ns = req.Request.sampling_ns;
                 contexts_planned = total;
                 budget = req.Request.budget;
               });
          (* [committed] is the resumable state: incumbent over fully
             finished contexts only — exactly what checkpoints store.
             [final] may additionally absorb a partial last context; it
             is what the caller gets back but never what resume seeds
             from, keeping resumed runs bit-identical to uninterrupted
             ones. *)
          let committed = ref snap0.Checkpoint.incumbent in
          let final = ref snap0.Checkpoint.incumbent in
          let cursor = ref snap0.Checkpoint.cursor in
          let started = ref 0 in
          let stop_reason = ref None in
          let save_checkpoint () =
            match checkpoint with
            | None -> ()
            | Some path ->
                Hsyn_obs.Trace.(span Checkpoint) "save" (fun () ->
                    Checkpoint.save path
                      {
                        snap0 with
                        Checkpoint.cursor = !cursor;
                        passes_run = snap0.Checkpoint.passes_run + Budget.passes_used token;
                        moves_tried = snap0.Checkpoint.moves_tried + Budget.moves_used token;
                        incumbent = !committed;
                      });
                emit (Events.Checkpoint_saved { path; contexts_done = !cursor })
          in
          let better value inc =
            match inc with Some (i : Checkpoint.incumbent) -> value < i.Checkpoint.value | None -> true
          in
          (try
             List.iteri
               (fun index (vdd, clk_ns, deadline) ->
                 if index >= snap0.Checkpoint.cursor then begin
                   (match Budget.exhausted token with Some r -> raise (Stop r) | None -> ());
                   incr started;
                   emit
                     (Events.Context_started
                        { index; total; vdd; clk_ns; deadline_cycles = deadline });
                   match
                     run_context ~session ~token ~events:emit ~index req config dfg
                       (vdd, clk_ns, deadline)
                   with
                   | exception Budget.Interrupted r ->
                       emit (Events.Context_finished { index; feasible = false });
                       raise (Stop r)
                   | improved, ctx, eval, stats, clib ->
                       let feasible = eval.Cost.feasible in
                       let value = Cost.objective_value req.Request.objective eval in
                       let inc =
                         if feasible then
                           Some
                             {
                               Checkpoint.design = improved;
                               ctx;
                               eval;
                               deadline_cycles = deadline;
                               value;
                               stats;
                               clib;
                             }
                         else None
                       in
                       if stats.Pass.interrupted then begin
                         (* partial context: usable as a final answer,
                            not as resumable state *)
                         emit (Events.Context_finished { index; feasible });
                         (match inc with
                         | Some i when better value !final -> final := Some i
                         | _ -> ());
                         let r =
                           match Budget.exhausted token with
                           | Some r -> r
                           | None -> Budget.Cancelled
                         in
                         raise (Stop r)
                       end;
                       emit (Events.Context_finished { index; feasible });
                       (match inc with
                       | Some i when better value !committed ->
                           committed := Some i;
                           Hsyn_obs.Trace.(instant Pass) "new_incumbent";
                           emit
                             (Events.New_incumbent
                                {
                                  context = index;
                                  vdd;
                                  clk_ns;
                                  value;
                                  area = eval.Cost.area;
                                  power = eval.Cost.power;
                                })
                       | _ -> ());
                       (* keep [final] in sync with the committed state *)
                       (match (!committed, !final) with
                       | Some c, Some f when c.Checkpoint.value < f.Checkpoint.value -> final := Some c
                       | Some _, None -> final := !committed
                       | _ -> ());
                       (* charged on completion, so the quota means
                          "finish at most N contexts" and never
                          interrupts the context it admitted *)
                       Budget.note_context token;
                       cursor := index + 1;
                       save_checkpoint ()
                 end)
               plan
           with Stop r ->
             stop_reason := Some r;
             emit (Events.Budget_exhausted { reason = Budget.reason_name r });
             save_checkpoint ());
          let elapsed_s = Unix.gettimeofday () -. start_time in
          (match cache_dir with
          | Some dir -> save_cache ~session ~emit dir
          | None -> ());
          Session.export_metrics session;
          let completed = !stop_reason = None in
          let coverage =
            {
              contexts_planned = total;
              contexts_started = snap0.Checkpoint.cursor + !started;
              contexts_done = !cursor;
              passes_run = snap0.Checkpoint.passes_run + Budget.passes_used token;
              moves_tried = snap0.Checkpoint.moves_tried + Budget.moves_used token;
              stop_reason = Option.map Budget.reason_name !stop_reason;
            }
          in
          let finish_events result_json =
            emit
              (Events.Run_finished
                 {
                   completed;
                   contexts_done = !cursor;
                   contexts_planned = total;
                   elapsed_s;
                   result = result_json;
                 })
          in
          (match !final with
          | None ->
              finish_events None;
              if completed then
                Error
                  (Printf.sprintf "no feasible design for %s at sampling %.1f ns" dfg.Dfg.name
                     req.Request.sampling_ns)
              else
                Error
                  (Printf.sprintf "budget exhausted (%s) before any feasible design was found"
                     (Option.fold ~none:"?" ~some:Budget.reason_name !stop_reason))
          | Some (i : Checkpoint.incumbent) ->
              let r =
                {
                  design = i.Checkpoint.design;
                  ctx = i.Checkpoint.ctx;
                  eval = i.Checkpoint.eval;
                  objective = req.Request.objective;
                  sampling_ns = req.Request.sampling_ns;
                  deadline_cycles = i.Checkpoint.deadline_cycles;
                  elapsed_s;
                  contexts_tried = coverage.contexts_started;
                  stats = i.Checkpoint.stats;
                  clib = i.Checkpoint.clib;
                  completed;
                  coverage;
                }
              in
              finish_events (Some (Result.to_json_value r));
              Ok r))

(* ------------------------------------------------------------------ *)
(* Portfolio search (ROADMAP item 2): race [n] deterministic strategies
   — the same request under [config.strategy], [strategy + 1], … — on
   their own domains, all sharing one session memo table so every
   evaluation any racer performs is immediately visible to the others.
   Each strategy runs under its own token started from the request's
   budget (a common deadline/quota envelope); the first to complete its
   full sweep wins and cooperatively cancels the rest. A completed
   sweep is bit-identical to that strategy run solo (the shared-session
   guarantee of PR 6), so racing changes wall time, never results.
   When no strategy completes (deadline or cancellation), the best
   feasible partial result wins — documented best-effort. *)

let portfolio ?(events = Events.null) ?token ?cache_dir ~n (req : Request.t) =
  if n <= 1 then synthesize ~events ?token ?cache_dir req
  else
    match Config.validate req.Request.config with
    | Error msg -> Error msg
    | Ok config ->
        let n = min n 16 in
        let start_time = Unix.gettimeofday () in
        let session =
          match req.Request.session with Some s -> s | None -> Session.create ()
        in
        let elock = Mutex.create () in
        let emit payload =
          Mutex.lock elock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock elock)
            (fun () -> events { Events.at_s = Unix.gettimeofday () -. start_time; payload })
        in
        (match cache_dir with
        | Some dir -> load_cache ~session ~config ~lib:req.Request.lib ~emit dir
        | None -> ());
        let tokens = Array.init n (fun _ -> Budget.start req.Request.budget) in
        let winner = Atomic.make (-1) in
        let forward i ev =
          (* propagate a cancellation of the caller's token to this
             racer; polled here because events fire at every pass and
             context boundary *)
          (match token with
          | Some t when Budget.interrupted t <> None -> Budget.cancel tokens.(i)
          | _ -> ());
          Mutex.lock elock;
          Fun.protect ~finally:(fun () -> Mutex.unlock elock) (fun () -> events ev)
        in
        let run_strategy i =
          let config_i = { config with strategy = config.strategy + i } in
          let req_i = { req with Request.config = config_i; session = Some session } in
          let r =
            try synthesize ~events:(forward i) ~token:tokens.(i) req_i
            with e -> Error (Printexc.to_string e)
          in
          (match r with
          | Ok res when res.completed ->
              if Atomic.compare_and_set winner (-1) i then
                Array.iteri (fun j tok -> if j <> i then Budget.cancel tok) tokens
          | _ -> ());
          r
        in
        let domains = List.init n (fun i -> Domain.spawn (fun () -> run_strategy i)) in
        let results = Array.of_list (List.map Domain.join domains) in
        let w = Atomic.get winner in
        Array.iteri
          (fun i r ->
            let completed = match r with Ok res -> res.completed | Error _ -> false in
            emit
              (Events.Strategy_finished
                 { strategy = config.strategy + i; completed; winner = i = w }))
          results;
        let picked =
          if w >= 0 then results.(w)
          else begin
            (* best-at-deadline: the best feasible partial result,
               earliest strategy on ties *)
            let best = ref None in
            Array.iteri
              (fun i r ->
                match r with
                | Ok res -> (
                    let v = Cost.objective_value res.objective res.eval in
                    match !best with Some (_, bv) when bv <= v -> () | _ -> best := Some (i, v))
                | Error _ -> ())
              results;
            match !best with Some (i, _) -> results.(i) | None -> results.(0)
          end
        in
        (match cache_dir with Some dir -> save_cache ~session ~emit dir | None -> ());
        picked

let rescale_vdd ?(config = default_config) ?session (r : result) vdds =
  let rng = Rng.create config.seed in
  let trace =
    Trace.generate rng config.trace_kind
      ~n_inputs:(Array.length r.design.Design.dfg.Dfg.inputs)
      ~length:config.trace_length
  in
  let candidates =
    List.filter (fun v -> v <= r.ctx.Design.vdd +. 1e-9) vdds |> List.sort compare
  in
  let best = ref r in
  (* the architecture is frozen; the clock may be re-picked so that a
     design that exactly filled its cycle budget can still slow down *)
  List.iter
    (fun vdd ->
      let clks = r.ctx.Design.clk_ns :: Clock.candidates r.ctx.Design.lib vdd in
      List.iter
        (fun clk_ns ->
          let deadline = int_of_float (Float.floor (r.sampling_ns /. clk_ns +. 1e-9)) in
          if deadline >= 1 then begin
            let ctx = { r.ctx with Design.vdd; clk_ns } in
            let cs = Sched.relaxed ~deadline r.design.Design.dfg in
            (* each (vdd, clk) point is its own evaluation context, so
               each gets its own (tiny) engine *)
            let engine =
              Engine.create
                ~policy:{ config.engine with Engine.cache_capacity = 4 }
                ?session ~ctx ~cs ~sampling_ns:r.sampling_ns ~trace ~objective:r.objective ()
            in
            let eval = Engine.evaluate_with_power engine r.design in
            if eval.Cost.feasible && eval.Cost.power < !best.eval.Cost.power then
              best := { r with ctx; eval; deadline_cycles = deadline }
          end)
        (Clock.spread config.max_clocks clks))
    candidates;
  !best
