lib/modlib/voltage.ml:
