lib/modlib/fu.ml: Float Format Hsyn_dfg List Printf String Voltage
