(* Tests for the textual DFG exchange format: parsing, printing,
   round-tripping, error reporting. *)

module Text = Hsyn_dfg.Text
module Dfg = Hsyn_dfg.Dfg
module Registry = Hsyn_dfg.Registry
module Flatten = Hsyn_dfg.Flatten

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let example =
  {|
# a behavior with one variant
behavior madd variant madd_v1
  input p
  input q
  op m mult p q
  output y m
end

dfg top
  input x
  input w
  const k 3
  op s add x w
  delay z s init 1
  call f madd 1 s z
  op t add f.0 k
  output o t
end
|}

let test_parse_basic () =
  let prog = Text.parse_string example in
  checki "one graph" 1 (List.length prog.Text.graphs);
  checkb "behavior registered" true (Registry.mem prog.Text.registry "madd");
  let g = List.hd prog.Text.graphs in
  checkb "name" true (g.Dfg.name = "top");
  checki "inputs" 2 (Array.length g.Dfg.inputs);
  checki "ops" 2 (Dfg.n_operations g);
  checki "calls" 1 (Dfg.n_calls g);
  checkb "validates" true (Dfg.validate g = Ok ());
  checkb "calls resolve" true (Registry.check_calls prog.Text.registry g = Ok ())

let test_roundtrip () =
  let prog = Text.parse_string example in
  let printed = Text.to_string prog in
  let prog2 = Text.parse_string printed in
  let g1 = List.hd prog.Text.graphs and g2 = List.hd prog2.Text.graphs in
  checkb "graph preserved" true (Dfg.equal g1 g2);
  checkb "behavior preserved" true
    (Dfg.equal (Registry.default_variant prog.Text.registry "madd")
       (Registry.default_variant prog2.Text.registry "madd"))

let test_delay_forward_reference () =
  (* the delay references a node defined later in the block *)
  let src = {|
dfg fwd
  input x
  delay z later
  op later add x z
  output o later
end
|} in
  let prog = Text.parse_string src in
  let g = List.hd prog.Text.graphs in
  checkb "valid" true (Dfg.validate g = Ok ())

let expect_error src =
  match Text.parse_string src with
  | exception Text.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_errors () =
  expect_error "dfg a\n  op x bogus y z\nend";
  expect_error "dfg a\n  input x\n  output o nosuch\nend";
  expect_error "dfg a\n  input x\n";
  (* missing end *)
  expect_error "  input x\n";
  (* statement outside block *)
  expect_error "dfg a\n  input x\n  input x\nend";
  (* duplicate label *)
  expect_error "dfg a\ndfg b\nend\nend"

let test_error_line_numbers () =
  match Text.parse_string "dfg a\n  input x\n  op m mult x nosuch\nend" with
  | exception Text.Parse_error (line, _) -> checki "line" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

let test_comments_and_blanks () =
  let src = "# leading comment\n\ndfg g # trailing\n  input x\n  output y x\nend\n" in
  let prog = Text.parse_string src in
  checki "parsed" 1 (List.length prog.Text.graphs)

let test_call_multi_output () =
  let src =
    {|
behavior split variant split_v
  input a
  input b
  op s add a b
  op d sub a b
  output o1 s
  output o2 d
end

dfg top
  input x
  input y
  call c split 2 x y
  op m mult c.0 c.1
  output o m
end
|}
  in
  let prog = Text.parse_string src in
  let g = List.hd prog.Text.graphs in
  checkb "valid" true (Dfg.validate g = Ok ());
  (* flatten through the registry to check connectivity of out port 1 *)
  let flat = Flatten.flatten prog.Text.registry g in
  checki "ops" 3 (Dfg.n_operations flat)

let test_to_dot () =
  let prog = Text.parse_string example in
  let dot = Text.to_dot (List.hd prog.Text.graphs) in
  checkb "has digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let test_parse_file () =
  let path = Filename.temp_file "hsyn" ".dfg" in
  let oc = open_out path in
  output_string oc example;
  close_out oc;
  let prog = Text.parse_file path in
  Sys.remove path;
  checki "one graph" 1 (List.length prog.Text.graphs)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "text"
    [
      ( "parse",
        [
          tc "basic" test_parse_basic;
          tc "delay forward reference" test_delay_forward_reference;
          tc "errors" test_errors;
          tc "error line numbers" test_error_line_numbers;
          tc "comments and blanks" test_comments_and_blanks;
          tc "call multi-output" test_call_multi_output;
          tc "from file" test_parse_file;
        ] );
      ("print", [ tc "roundtrip" test_roundtrip; tc "to_dot" test_to_dot ]);
    ]
