(* Tests for the staged, memoized, parallel evaluation engine and its
   supporting pieces (worker pool, fingerprinting, order statistics).

   The central property: the engine is an optimization of the cost
   oracle, never a change to it. Every result must be bit-identical to
   a direct Cost.evaluate call, for both objectives, at any jobs
   count, with the cache and staging on or off. *)

module Design = Hsyn_rtl.Design
module Dfg = Hsyn_dfg.Dfg
module Library = Hsyn_modlib.Library
module Fu = Hsyn_modlib.Fu
module Sched = Hsyn_sched.Sched
module Cost = Hsyn_core.Cost
module Engine = Hsyn_core.Engine
module Clib = Hsyn_core.Clib
module S = Hsyn_core.Synthesize
module Suite = Hsyn_benchmarks.Suite
module Pool = Hsyn_util.Pool
module Stats = Hsyn_util.Stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)
let ctx = Tu.ctx ()

(* Bitwise equality of evaluations, nan-tolerant (nan = power not
   computed must match on both sides). *)
let same_eval (a : Cost.eval) (b : Cost.eval) =
  Int64.bits_of_float a.Cost.area = Int64.bits_of_float b.Cost.area
  && Int64.bits_of_float a.Cost.power = Int64.bits_of_float b.Cost.power
  && Int64.bits_of_float a.Cost.energy_sample = Int64.bits_of_float b.Cost.energy_sample
  && a.Cost.makespan = b.Cost.makespan
  && a.Cost.feasible = b.Cost.feasible

let mk_engine ?policy ?(objective = Cost.Area) ?(deadline = 1000) (d : Design.t) =
  let cs = Sched.relaxed ~deadline d.Design.dfg in
  let sampling_ns = Float.of_int deadline *. 20. in
  let trace = Tu.trace d.Design.dfg in
  ( Engine.create ?policy ~ctx ~cs ~sampling_ns ~trace ~objective (),
    fun ?(with_power = objective = Cost.Power) dd ->
      Cost.evaluate ~with_power ctx cs ~sampling_ns ~trace dd )

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_array () =
  List.iter
    (fun jobs ->
      let pool = Pool.shared jobs in
      checki "jobs" jobs (Pool.jobs pool);
      let input = Array.init 100 Fun.id in
      let out = Pool.map_array pool (fun x -> x * x) input in
      Alcotest.check (Alcotest.array Alcotest.int) "squares"
        (Array.map (fun x -> x * x) input)
        out;
      checkb "empty ok" true (Pool.map_array pool (fun x -> x) [||] = [||]))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      let pool = Pool.shared jobs in
      match Pool.map_array pool (fun x -> if x = 5 then raise (Boom x) else x) (Array.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom 5 -> ())
    [ 1; 4 ]

(* A task that dies must surface its own exception on the caller
   domain — never [assert false], never a lost worker. The pool must
   also stay usable for the next batch (all workers alive, queue
   empty). *)
let test_pool_worker_death_reraises () =
  List.iter
    (fun jobs ->
      let pool = Pool.shared jobs in
      (match Pool.map_array pool (fun x -> if x >= 0 then raise (Boom x) else x) (Array.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom _ -> ());
      (* the pool survives a fully-poisoned batch *)
      let out = Pool.map_array pool (fun x -> x + 1) (Array.init 16 Fun.id) in
      Alcotest.check (Alcotest.array Alcotest.int) "pool still works" (Array.init 16 succ) out)
    [ 2; 4 ]

(* An exception escaping the [cancel] poll itself is captured like a
   task exception: re-raised on the caller, no deadlocked batch. *)
let test_pool_raising_cancel_captured () =
  List.iter
    (fun jobs ->
      let pool = Pool.shared jobs in
      match
        Pool.map_array
          ~cancel:(fun () -> raise (Boom (-1)))
          pool
          (fun x -> x * 2)
          (Array.init 8 Fun.id)
      with
      | _ -> Alcotest.fail "expected exception"
      | exception Boom (-1) -> ()
      | exception Pool.Cancelled -> Alcotest.fail "cancel exception must win over Cancelled")
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Stats order statistics *)

let test_stats_median_percentile () =
  checkf "median empty" 0. (Stats.median []);
  checkf "median singleton" 3. (Stats.median [ 3. ]);
  checkf "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  checkf "median even" 2.5 (Stats.median [ 4.; 1.; 3.; 2. ]);
  let l = List.init 101 Float.of_int in
  checkf "p0 is min" 0. (Stats.percentile 0. l);
  checkf "p100 is max" 100. (Stats.percentile 100. l);
  checkf "p25" 25. (Stats.percentile 25. l);
  checkf "p90" 90. (Stats.percentile 90. l);
  checkf "clamped" 100. (Stats.percentile 150. l);
  checkf "interpolates" 0.5 (Stats.percentile 50. [ 0.; 1. ])

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint_stability () =
  let d = Tu.initial ctx (Tu.small_graph ()) in
  checkb "deterministic" true (Design.fingerprint d = Design.fingerprint d);
  let d2 = Tu.initial ctx (Tu.small_graph ()) in
  checkb "structural" true (Design.fingerprint d = Design.fingerprint d2);
  (* any structural change must (with overwhelming probability) move
     the fingerprint *)
  let alt =
    match d.Design.insts.(0) with
    | Design.Simple fu -> (
        match Library.alternatives Library.default fu with
        | a :: _ -> Design.with_inst d 0 (Design.Simple a)
        | [] -> Alcotest.fail "no alternatives in default library")
    | Design.Module _ -> Alcotest.fail "expected simple instance"
  in
  checkb "sensitive to instances" true (Design.fingerprint d <> Design.fingerprint alt)

let test_consumer_index_matches_rescan () =
  List.iter
    (fun seed ->
      let g = Tu.random_flat_graph seed ~n_inputs:3 ~n_ops:12 in
      let idx = Design.consumer_index g in
      (* reference: whole-graph rescan *)
      for v = 0 to Design.n_values g - 1 do
        let p = Design.value_of_index g v in
        let expect = ref [] in
        Array.iteri
          (fun dst (node : Dfg.node) ->
            Array.iteri (fun port src -> if src = p then expect := (dst, port) :: !expect) node.Dfg.ins)
          g.Dfg.nodes;
        checkb "same consumers" true
          (List.sort compare idx.(v) = List.sort compare !expect)
      done)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Engine ≡ Cost.evaluate *)

let suite_designs () =
  List.map
    (fun (b : Suite.t) -> Tu.initial ~registry:b.Suite.registry ctx b.Suite.dfg)
    (Suite.all ())

let test_engine_equals_direct () =
  List.iter
    (fun objective ->
      List.iter
        (fun d ->
          let eng, direct = mk_engine ~objective d in
          let via_engine = Engine.evaluate eng d in
          checkb "evaluate matches direct" true (same_eval via_engine (direct d));
          (* second query: must hit the cache and return the same bits *)
          let again = Engine.evaluate eng d in
          checkb "cached result identical" true (same_eval via_engine again);
          checkb "cache hit counted" true ((Engine.counters eng).Engine.cache_hits >= 1);
          (* full-power query upgrades in place and matches a direct
             full evaluation *)
          let full = Engine.evaluate_with_power eng d in
          checkb "with-power matches direct" true (same_eval full (direct ~with_power:true d)))
        (suite_designs ()))
    [ Cost.Area; Cost.Power ]

let test_engine_random_graphs () =
  List.iter
    (fun seed ->
      let g = Tu.random_flat_graph seed ~n_inputs:3 ~n_ops:10 in
      let d = Tu.initial ctx g in
      List.iter
        (fun objective ->
          List.iter
            (fun policy ->
              let eng, direct = mk_engine ~policy ~objective d in
              checkb "policy-independent" true (same_eval (Engine.evaluate eng d) (direct d)))
            [
              { Engine.jobs = 1; cache_capacity = 0; staged = false };
              { Engine.jobs = 4; cache_capacity = 64; staged = true };
            ])
        [ Cost.Area; Cost.Power ])
    (List.init 8 succ)

(* [best_of] against a sequential reference fold over the same
   candidates (earliest-wins tie-breaking, full evaluation of every
   candidate). *)
let test_best_of_matches_reference () =
  let d = Tu.initial ctx (Tu.small_graph ()) in
  let lib = Library.default in
  let variants =
    List.concat
      (List.init
         (Array.length d.Design.insts)
         (fun i ->
           match d.Design.insts.(i) with
           | Design.Simple fu ->
               List.map (fun alt -> Design.with_inst d i (Design.Simple alt)) (Library.alternatives lib fu)
           | Design.Module _ -> []))
  in
  checkb "have variants" true (List.length variants > 2);
  List.iter
    (fun objective ->
      List.iter
        (fun policy ->
          let eng, direct = mk_engine ~policy ~objective d in
          let tagged = List.mapi (fun i v -> (i, v)) variants in
          let reference =
            List.fold_left
              (fun best (i, v) ->
                let e = direct ~with_power:true v in
                let value = Cost.objective_value objective e in
                if value = infinity then best
                else
                  match best with
                  | Some (_, _, bv) when bv <= value -> best
                  | _ -> Some (i, e, value))
              None tagged
          in
          match
            ( Engine.best_of eng ~limit:max_int (List.to_seq tagged),
              reference )
          with
          | None, None -> ()
          | Some _, None | None, Some _ -> Alcotest.fail "feasibility disagreement"
          | Some (i, _, e, value), Some (ri, re, rvalue) ->
              checki "same winner" ri i;
              checkb "same value" true (Int64.bits_of_float value = Int64.bits_of_float rvalue);
              checkb "same area bits" true
                (Int64.bits_of_float e.Cost.area = Int64.bits_of_float re.Cost.area);
              (* power mode must have fully evaluated the winner *)
              if objective = Cost.Power then
                checkb "winner power bits" true
                  (Int64.bits_of_float e.Cost.power = Int64.bits_of_float re.Cost.power))
        [
          { Engine.jobs = 1; cache_capacity = 0; staged = false };
          { Engine.jobs = 1; cache_capacity = 128; staged = true };
          { Engine.jobs = 4; cache_capacity = 128; staged = true };
        ])
    [ Cost.Area; Cost.Power ]

let test_best_of_limit_and_counters () =
  let d = Tu.initial ctx (Tu.small_graph ()) in
  let eng, _ = mk_engine ~objective:Cost.Area d in
  let pulled = ref 0 in
  let seq =
    Seq.map
      (fun i ->
        incr pulled;
        (i, d))
      (Seq.init 50 Fun.id)
  in
  (match Engine.best_of eng ~limit:5 seq with
  | Some (0, _, _, _) -> ()
  | _ -> Alcotest.fail "expected candidate 0");
  checki "generation truncated" 5 !pulled;
  let c = Engine.counters eng in
  checki "generated" 5 c.Engine.generated;
  checki "batches" 1 c.Engine.batches;
  (* 5 identical designs: one miss, then in-batch hits *)
  checki "one schedule computed" 1 c.Engine.evaluated;
  checki "hits" 4 c.Engine.cache_hits

let test_cache_eviction () =
  let designs = List.init 5 (fun s -> Tu.initial ctx (Tu.random_flat_graph (100 + s) ~n_inputs:2 ~n_ops:6)) in
  let eng, _ =
    mk_engine ~policy:{ Engine.jobs = 1; cache_capacity = 2; staged = true } (List.hd designs)
  in
  List.iter (fun d -> ignore (Engine.evaluate eng d)) designs;
  checkb "capacity respected" true (Engine.cache_size eng <= 2);
  checkb "evictions counted" true ((Engine.counters eng).Engine.evictions >= 3)

let test_family_counters () =
  let d = Tu.initial ctx (Tu.small_graph ()) in
  let eng, _ = mk_engine ~objective:Cost.Area d in
  ignore
    (Engine.best_of eng
       ~family:(fun i -> if i mod 2 = 0 then "even" else "odd")
       ~limit:10
       (Seq.init 10 (fun i -> (i, d))));
  match Engine.family_counters eng with
  | [ ("even", ce); ("odd", co) ] ->
      checki "even generated" 5 ce.Engine.generated;
      checki "odd generated" 5 co.Engine.generated
  | l -> Alcotest.failf "unexpected families (%d)" (List.length l)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: full synthesis must produce bit-identical
   results at any jobs count, and with the engine machinery disabled. *)

let test_synthesis_determinism () =
  let b = Suite.test1 () in
  let min_ns = S.min_sampling_ns Library.default b.Suite.registry b.Suite.dfg in
  let run policy =
    let config =
      {
        S.default_config with
        S.max_moves = 4;
        max_passes = 1;
        max_candidates = 16;
        trace_length = 6;
        max_clocks = 1;
        clib_effort =
          { Clib.default_effort with Clib.max_moves = 2; max_passes = 1; engine = policy };
        engine = policy;
      }
    in
    let r =
      match
        Result.bind
          (S.Request.make ~config ~lib:Library.default ~registry:b.Suite.registry
             ~dfg:b.Suite.dfg ~objective:Cost.Power ~sampling_ns:(2.2 *. min_ns) ())
          S.synthesize
      with
      | Ok r -> r
      | Error msg -> Alcotest.failf "synthesis failed: %s" msg
    in
    r.S.eval
  in
  let direct = run { Engine.jobs = 1; cache_capacity = 0; staged = false } in
  let seq = run { Engine.jobs = 1; cache_capacity = 4096; staged = true } in
  let par = run { Engine.jobs = 4; cache_capacity = 4096; staged = true } in
  checkb "engine-on equals direct" true (same_eval direct seq);
  checkb "jobs=4 equals jobs=1" true (same_eval seq par)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine"
    [
      ( "pool",
        [
          tc "map_array" test_pool_map_array;
          tc "exception propagates" test_pool_exception_propagates;
          tc "worker death re-raises" test_pool_worker_death_reraises;
          tc "raising cancel captured" test_pool_raising_cancel_captured;
        ] );
      ("stats", [ tc "median/percentile" test_stats_median_percentile ]);
      ( "fingerprint",
        [
          tc "stability" test_fingerprint_stability;
          tc "consumer index" test_consumer_index_matches_rescan;
        ] );
      ( "engine",
        [
          tc "equals direct on suite" test_engine_equals_direct;
          tc "random graphs, all policies" test_engine_random_graphs;
          tc "best_of matches reference" test_best_of_matches_reference;
          tc "limit and counters" test_best_of_limit_and_counters;
          tc "cache eviction" test_cache_eviction;
          tc "family counters" test_family_counters;
        ] );
      ("determinism", [ tc "jobs-independent synthesis" test_synthesis_determinism ]);
    ]
